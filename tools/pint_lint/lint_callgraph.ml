(* Whole-program collection for the R5/R6 passes: one pass over every
   module's typed tree builds

   - a cross-module call graph over *function nodes* (top-level bindings,
     nested function bindings, and synthetic nodes for closures that
     escape into data structures or unknown callees),
   - per-node field/global access sets (reads and writes, attributed to
     the innermost enclosing function node),
   - the [@pint.publishes]/[@pint.acquires] edge annotations on function
     bindings and on mutable field declarations,
   - the seeds of the domain-context inference: function values that reach
     [Domain.spawn] (directly, or referenced from a spawned thunk), and
     closures that escape the collector's sight.

   The central approximation (DESIGN.md §15): a closure whose consumer the
   linter cannot see — stored into a record/tuple, passed to a callee
   outside the known-synchronous set — is treated as *potentially running
   on any domain*.  That over-approximates (a simulator-only closure is
   analyzed as if it could run on a pool domain) but never under-
   approximates for the code shapes in this repo: every pipeline-stage
   body, micropool thunk and hook sink reaches the analysis exactly this
   way.  Closures passed to known synchronous higher-order functions
   (List.iter & friends) inherit the caller's context instead. *)

open Typedtree
open Lint_types

type access = { a_path : string; a_loc : Location.t; a_write : bool }

type node = {
  n_name : string;
  n_loc : Location.t;
  mutable n_calls : string list;  (** resolved callee node names, unordered *)
  mutable n_accesses : access list;
  mutable n_publishes : string list;  (** edges this function releases *)
  mutable n_acquires : string list;  (** edges this function acquires *)
  mutable n_escaping : bool;  (** value escaped to an unseen consumer *)
  mutable n_spawn : bool;  (** reaches Domain.spawn as the spawned thunk *)
}

type program = {
  p_nodes : (string, node) Hashtbl.t;
  (* mutable-field path -> (declared publication edges, declaration loc) *)
  p_field_edges : (string, string list * Location.t) Hashtbl.t;
  (* module-level mutable values: "Mod.name" -> declaration loc *)
  p_globals : (string, Location.t) Hashtbl.t;
  (* R5 closure-escape findings, produced during collection *)
  mutable p_escapes : finding list;
  (* (name, `Spawn | `Escape) marks on names that may resolve to nodes of
     modules not yet collected; applied in [finalize] *)
  mutable p_pending : (string * [ `Spawn | `Escape ]) list;
}

let create_program () =
  {
    p_nodes = Hashtbl.create 256;
    p_field_edges = Hashtbl.create 32;
    p_globals = Hashtbl.create 16;
    p_escapes = [];
    p_pending = [];
  }

(* ----------------------------------------------------------------- naming *)

(* Component-wise normalization: dune's wrapped-library mangling
   ("Pint_trace__Ahq") and stdlib unit mangling ("Stdlib__List") both
   reduce to the source-level component after the last "__". *)
let norm_component c =
  match Str_split.split_on_last c ~sep:"__" with
  | Some (_, tail) when tail <> "" -> String.capitalize_ascii tail
  | _ -> c

let norm_name name =
  let parts = String.split_on_char '.' name |> List.map norm_component in
  let name = String.concat "." parts in
  if Str_split.starts_with ~prefix:"Stdlib." name then
    String.sub name 7 (String.length name - 7)
  else name

let path_name p = norm_name (Path.name p)

(* ------------------------------------------------------------- collection *)

type scope_entry =
  | Sfun of node  (** local name bound to a function node *)
  | Sref of Location.t  (** local mutable value (ref/array) *)

type cst = {
  modname : string;
  prog : program;
  mutable node_stack : node list;  (** innermost first; never empty *)
  mutable scope : (string * scope_entry) list;
  mutable submodules : string list;  (** submodule names declared in this unit *)
  mutable anon : int;
  (* lambda locations already walked by a special-cased consumer *)
  handled : (int * int, unit) Hashtbl.t;
  (* scope snapshot at entry of the innermost spawned thunk, for the
     closure-escape check; None outside such thunks *)
  mutable spawn_scope : (string * scope_entry) list option;
}

let loc_key (loc : Location.t) = (loc.loc_start.pos_cnum, loc.loc_end.pos_cnum)

let node_of st = List.hd st.node_stack

let get_node prog name loc =
  match Hashtbl.find_opt prog.p_nodes name with
  | Some n -> n
  | None ->
      let n =
        {
          n_name = name;
          n_loc = loc;
          n_calls = [];
          n_accesses = [];
          n_publishes = [];
          n_acquires = [];
          n_escaping = false;
          n_spawn = false;
        }
      in
      Hashtbl.add prog.p_nodes name n;
      n

let add_call st callee =
  let n = node_of st in
  if not (List.mem callee n.n_calls) then n.n_calls <- callee :: n.n_calls

let add_access st ~path ~loc ~write =
  let n = node_of st in
  n.n_accesses <- { a_path = path; a_loc = loc; a_write = write } :: n.n_accesses

(* ---------------------------------------------------------- attribute edges *)

let attr_payload_string (a : Parsetree.attribute) =
  match a.Parsetree.attr_payload with
  | Parsetree.PStr
      [
        {
          Parsetree.pstr_desc =
            Parsetree.Pstr_eval
              ({ Parsetree.pexp_desc = Parsetree.Pexp_constant (Parsetree.Pconst_string (s, _, _)); _ }, _);
          _;
        };
      ] ->
      Some s
  | _ -> None

(* Edge names: whitespace/comma-separated in the attribute payload. *)
let parse_edges s =
  String.split_on_char ' ' s
  |> List.concat_map (String.split_on_char ',')
  |> List.map String.trim
  |> List.filter (fun e -> e <> "")

let edges_of_attrs name attrs =
  List.concat_map
    (fun (a : Parsetree.attribute) ->
      if a.Parsetree.attr_name.Asttypes.txt = name then
        match attr_payload_string a with Some s -> parse_edges s | None -> []
      else [])
    attrs

(* -------------------------------------------------------------- type tests *)

let head_name ty =
  match Types.get_desc ty with Types.Tconstr (p, _, _) -> Some (path_name p) | _ -> None

let is_arrow ty = match Types.get_desc ty with Types.Tarrow _ -> true | _ -> false

let is_mutable_value_ty ty =
  match head_name ty with Some nm -> List.mem nm mutable_value_heads | None -> false

let is_atomic_ty ty =
  match head_name ty with Some nm -> nm = "Atomic.t" | None -> false

(* The record type a label belongs to, as the inventory spells it:
   [Mod.ty.field], where a same-unit type gets the unit's module name. *)
let field_path st (ld : Types.label_description) =
  let tyname =
    match Types.get_desc ld.Types.lbl_res with
    | Types.Tconstr (p, _, _) -> path_name p
    | _ -> "?"
  in
  let tyname = if String.contains tyname '.' then tyname else st.modname ^ "." ^ tyname in
  tyname ^ "." ^ ld.Types.lbl_name

(* --------------------------------------------------------- callee classes *)

type callee_class = Spawn_sink | Sync_hof | Unknown

let classify_callee name =
  if List.mem name (List.map norm_name spawn_sinks) then Spawn_sink
  else if
    List.exists (fun pre -> Str_split.starts_with ~prefix:(norm_name pre) name) sync_hof_prefixes
  then Sync_hof
  else Unknown

(* Content operations on mutable containers / refs: (normalized name,
   whether the op writes the contents). *)
let content_ops =
  [
    ("Array.get", false);
    ("Array.unsafe_get", false);
    ("Array.set", true);
    ("Array.unsafe_set", true);
    ("Array.fill", true);
    ("Bytes.get", false);
    ("Bytes.set", true);
    ("Bytes.unsafe_get", false);
    ("Bytes.unsafe_set", true);
    ("!", false);
    (":=", true);
    ("incr", true);
    ("decr", true);
  ]

(* ------------------------------------------------------- name resolution *)

(* Resolve an identifier occurrence to, in order: a lexically visible
   function node, the module-qualified name of a same-unit value, or the
   normalized cross-module name. *)
let resolve_ident st p =
  match p with
  | Path.Pident id -> (
      let name = Ident.name id in
      match List.assoc_opt name st.scope with
      | Some (Sfun n) -> `Node n.n_name
      | Some (Sref loc) -> `Local_ref (name, loc)
      | None -> `Name (st.modname ^ "." ^ name))
  | _ ->
      let nm = path_name p in
      let root = match String.index_opt nm '.' with Some i -> String.sub nm 0 i | None -> nm in
      if List.mem root st.submodules then `Name (st.modname ^ "." ^ nm) else `Name nm

let mark_pending st name kind = st.prog.p_pending <- (name, kind) :: st.prog.p_pending

(* -------------------------------------------------------------- traversal *)

let pat_name : type k. k general_pattern -> string option =
 fun p -> match p.pat_desc with Tpat_var (id, _) -> Some (Ident.name id) | _ -> None

let fresh_anon st tag =
  st.anon <- st.anon + 1;
  Printf.sprintf "%s.<%s%d>" (node_of st).n_name tag st.anon

let rec collect_structure st (str : structure) = List.iter (collect_item st) str.str_items

and collect_item st item =
  match item.str_desc with
  | Tstr_value (_, vbs) ->
      (* bind the whole group first so recursive and forward same-item
         references resolve (minor shadowing imprecision accepted) *)
      List.iter (bind_value st ~toplevel:true) vbs;
      List.iter (walk_value st) vbs
  | Tstr_module mb -> collect_module st mb
  | Tstr_recmodule mbs -> List.iter (collect_module st) mbs
  | Tstr_type _ | Tstr_typext _ | Tstr_exception _ | Tstr_modtype _ | Tstr_open _
  | Tstr_class _ | Tstr_class_type _ | Tstr_include _ | Tstr_attribute _ | Tstr_primitive _ ->
      ()
  | Tstr_eval (e, _) -> walk_expr st e

and collect_module st mb =
  let name = match mb.mb_name.Asttypes.txt with Some n -> n | None -> "_" in
  st.submodules <- name :: st.submodules;
  let rec unwrap me =
    match me.mod_desc with
    | Tmod_structure s -> Some s
    | Tmod_constraint (me, _, _, _) -> unwrap me
    | _ -> None
  in
  match unwrap mb.mb_expr with
  | None -> ()
  | Some s ->
      (* nest node names under Mod.Sub.*; the scope persists after the
         submodule so later Sub.f references resolve lexically *)
      let saved = st.node_stack in
      let holder = get_node st.prog (st.modname ^ "." ^ name) mb.mb_loc in
      st.node_stack <- [ holder ];
      let entries_before = st.scope in
      collect_structure st s;
      (* re-qualify the submodule's toplevel names: [feed] inside
         [module Session] must be addressable as [Session.feed] *)
      let added = ref [] in
      let rec diff l =
        if l == entries_before then ()
        else
          match l with
          | (n, e) :: tl ->
              added := (name ^ "." ^ n, e) :: !added;
              diff tl
          | [] -> ()
      in
      diff st.scope;
      st.scope <- !added @ st.scope;
      st.node_stack <- saved

(* Register the binding's name in scope (function node / local ref /
   nothing) without walking its RHS. *)
and bind_value st ~toplevel vb =
  match pat_name vb.vb_pat with
  | None -> ()
  | Some name ->
      let ty = vb.vb_expr.exp_type in
      if is_arrow ty then begin
        let qname = (node_of st).n_name ^ "." ^ name in
        (* top-level names are the canonical Mod.f; nested ones chain *)
        let qname =
          if toplevel && List.length st.node_stack = 1 then
            (node_of st).n_name ^ "." ^ name
          else qname
        in
        let n = get_node st.prog qname vb.vb_loc in
        n.n_publishes <- n.n_publishes @ edges_of_attrs publishes_attribute vb.vb_attributes;
        n.n_acquires <- n.n_acquires @ edges_of_attrs acquires_attribute vb.vb_attributes;
        st.scope <- (name, Sfun n) :: st.scope
      end
      else begin
        if is_mutable_value_ty ty && not (is_atomic_ty ty) then
          if toplevel && List.length st.node_stack = 1 then
            Hashtbl.replace st.prog.p_globals ((node_of st).n_name ^ "." ^ name) vb.vb_loc
          else st.scope <- (name, Sref vb.vb_loc) :: st.scope
      end

and walk_value st vb =
  match pat_name vb.vb_pat with
  | Some name when is_arrow vb.vb_expr.exp_type -> (
      match List.assoc_opt name st.scope with
      | Some (Sfun n) ->
          st.node_stack <- n :: st.node_stack;
          walk_spine st vb.vb_expr;
          st.node_stack <- List.tl st.node_stack
      | _ -> walk_expr st vb.vb_expr)
  | _ -> walk_expr st vb.vb_expr

(* The leading [fun] chain of a function binding is the function itself,
   not an escaping closure.  Optional-argument defaults desugar to a
   [Texp_let] between two [Texp_function] layers, so the spine follows
   let-bodies too. *)
and walk_spine st e =
  match e.exp_desc with
  | Texp_function { cases; _ } ->
      Hashtbl.replace st.handled (loc_key e.exp_loc) ();
      List.iter
        (fun c ->
          Option.iter (walk_expr st) c.c_guard;
          walk_spine st c.c_rhs)
        cases
  | Texp_let (_, vbs, body) ->
      let saved = st.scope in
      List.iter (bind_value st ~toplevel:false) vbs;
      List.iter (walk_value st) vbs;
      walk_spine st body;
      st.scope <- saved
  | _ -> walk_expr st e

(* Walk a closure body under a fresh synthetic node. *)
and walk_closure_as st e ~tag ~spawn ~escaping =
  let name = fresh_anon st tag in
  let n = get_node st.prog name e.exp_loc in
  n.n_spawn <- n.n_spawn || spawn;
  n.n_escaping <- n.n_escaping || escaping;
  (* the enclosing function "calls" the closure's construction site so
     caller lists stay connected for the both-context classification *)
  add_call st name;
  st.node_stack <- n :: st.node_stack;
  let saved_spawn = st.spawn_scope in
  if spawn then st.spawn_scope <- Some st.scope;
  Hashtbl.replace st.handled (loc_key e.exp_loc) ();
  (match e.exp_desc with Texp_function _ -> walk_spine st e | _ -> walk_expr st e);
  st.spawn_scope <- saved_spawn;
  st.node_stack <- List.tl st.node_stack

and walk_expr st e =
  let loc = e.exp_loc in
  match e.exp_desc with
  | Texp_ident (p, _, _) -> ident_use st p e loc
  | Texp_field (base, _, ld) ->
      add_access st ~path:(field_path st ld) ~loc ~write:false;
      walk_expr st base
  | Texp_setfield (base, _, ld, v) ->
      add_access st ~path:(field_path st ld) ~loc ~write:true;
      walk_expr st base;
      walk_expr st v
  | Texp_apply (f, args) -> walk_apply st f args loc
  | Texp_function _ ->
      if not (Hashtbl.mem st.handled (loc_key loc)) then
        (* a lambda in data position (tuple, record field, list cell,
           argument default…): its consumer is unknown — escaping *)
        walk_closure_as st e ~tag:"anon" ~spawn:false ~escaping:true
  | Texp_let (_, vbs, body) ->
      let saved = st.scope in
      List.iter (bind_value st ~toplevel:false) vbs;
      List.iter (walk_value st) vbs;
      walk_expr st body;
      st.scope <- saved
  | _ -> Tast_iterator.default_iterator.expr (iter st) e

and iter st =
  let super = Tast_iterator.default_iterator in
  {
    super with
    expr = (fun _ e -> walk_expr st e);
    value_binding =
      (fun _ vb ->
        bind_value st ~toplevel:false vb;
        walk_value st vb);
  }

(* A bare identifier occurrence outside call position. *)
and ident_use st p e loc =
  match resolve_ident st p with
  | `Node _ -> ()  (* value use of a function: escape is decided at the consumer *)
  | `Local_ref (name, _) -> note_local_ref_use st name loc
  | `Name nm ->
      if Hashtbl.mem st.prog.p_globals nm then add_access st ~path:nm ~loc ~write:false
      else if (not (String.contains nm '.')) && is_mutable_value_ty e.exp_type then
        (* same-unit global seen before its declaration pass: qualify *)
        ()

(* Inside a spawned thunk, touching a mutable local captured from the
   enclosing scope is the closure-escape R5 violation: the value now lives
   on two domains with no publication edge. *)
and note_local_ref_use st name loc =
  match st.spawn_scope with
  | None -> ()
  | Some outer ->
      let captured =
        match List.assoc_opt name outer with
        | Some (Sref l) -> (
            (* same entry still visible? then it was NOT rebound inside *)
            match List.assoc_opt name st.scope with Some (Sref l') -> l == l' | _ -> false)
        | _ -> false
      in
      if captured then
        st.prog.p_escapes <-
          make_finding ~rule:R5_publication ~loc ~context:(node_of st).n_name ~kind:"closure-escape"
            (Printf.sprintf
               "mutable local '%s' captured into a spawned thunk: it now lives on two domains \
                with no publication edge (make it atomic, or hand off an immutable value)"
               name)
          :: st.prog.p_escapes

and walk_apply st f args loc =
  let callee =
    match f.exp_desc with
    | Texp_ident (p, _, _) -> (
        match resolve_ident st p with
        | `Node n -> Some n
        | `Name nm -> Some nm
        | `Local_ref (name, _) ->
            note_local_ref_use st name f.exp_loc;
            None)
    | _ ->
        walk_expr st f;
        None
  in
  let cname = Option.value callee ~default:"" in
  (* content ops on refs / arrays reached through a field or a global *)
  let content_op = List.assoc_opt cname content_ops in
  (match content_op with
  | Some write -> (
      match args with
      | (_, Some target) :: rest -> (
          (match target.exp_desc with
          | Texp_field (base, _, ld) ->
              add_access st ~path:(field_path st ld) ~loc ~write;
              walk_expr st base
          | Texp_ident (p, _, _) -> (
              match resolve_ident st p with
              | `Local_ref (name, _) -> note_local_ref_use st name target.exp_loc
              | `Name nm when Hashtbl.mem st.prog.p_globals nm ->
                  add_access st ~path:nm ~loc ~write
              | _ -> ())
          | _ -> walk_expr st target);
          List.iter (fun (_, a) -> Option.iter (walk_expr st) a) rest)
      | _ -> List.iter (fun (_, a) -> Option.iter (walk_expr st) a) args)
  | None ->
      let cls = if cname = "" then Unknown else classify_callee cname in
      (* the call edge itself *)
      (match callee with
      | Some nm when cls = Unknown -> add_call st nm
      | Some nm when cls = Sync_hof -> add_call st nm
      | _ -> ());
      List.iter
        (fun (_, arg) ->
          match arg with
          | None -> ()
          | Some a -> (
              match a.exp_desc with
              | Texp_function _ -> (
                  match cls with
                  | Sync_hof ->
                      (* runs on the caller's domain: inline, same node *)
                      Hashtbl.replace st.handled (loc_key a.exp_loc) ();
                      walk_spine st a
                  | Spawn_sink -> walk_closure_as st a ~tag:"spawn" ~spawn:true ~escaping:false
                  | Unknown -> walk_closure_as st a ~tag:"anon" ~spawn:false ~escaping:true)
              | Texp_ident (p, _, _) when is_arrow a.exp_type -> (
                  match resolve_ident st p with
                  | `Node n -> (
                      match cls with
                      | Sync_hof -> add_call st n
                      | Spawn_sink -> mark_pending st n `Spawn
                      | Unknown -> mark_pending st n `Escape)
                  | `Name nm -> (
                      match cls with
                      | Sync_hof -> add_call st nm
                      | Spawn_sink -> mark_pending st nm `Spawn
                      | Unknown -> mark_pending st nm `Escape)
                  | `Local_ref _ -> ())
              | _ -> walk_expr st a))
        args)

(* -------------------------------------------------- per-module entry point *)

(* Field-declaration pass: publication-edge attributes on mutable fields.
   Mirrors the R3 inventory's path naming. *)
let collect_field_edges prog ~modname (str : structure) =
  let rec labels_of_decl prefix (td : type_declaration) =
    let tyname = td.typ_name.Asttypes.txt in
    match td.typ_kind with
    | Ttype_record lds -> List.map (fun ld -> (tyname ^ prefix, ld)) lds
    | Ttype_variant cds ->
        List.concat_map
          (fun cd ->
            match cd.cd_args with
            | Cstr_record lds ->
                List.map (fun ld -> (tyname ^ "." ^ cd.cd_name.Asttypes.txt, ld)) lds
            | Cstr_tuple _ -> [])
          cds
    | _ -> []
  and walk_items items =
    List.iter
      (fun item ->
        match item.str_desc with
        | Tstr_type (_, tds) ->
            List.iter
              (fun td ->
                List.iter
                  (fun (typath, ld) ->
                    let edges = edges_of_attrs publishes_attribute ld.ld_attributes in
                    if edges <> [] then
                      Hashtbl.replace prog.p_field_edges
                        (Printf.sprintf "%s.%s.%s" modname typath ld.ld_name.Asttypes.txt)
                        (edges, ld.ld_loc))
                  (labels_of_decl "" td))
              tds
        | Tstr_module mb -> (
            let rec unwrap me =
              match me.mod_desc with
              | Tmod_structure s -> Some s
              | Tmod_constraint (me, _, _, _) -> unwrap me
              | _ -> None
            in
            match unwrap mb.mb_expr with Some s -> walk_items s.str_items | None -> ())
        | _ -> ())
      items
  in
  walk_items str.str_items

(* First pass over a module: globals + field edges (so cross-module global
   accesses resolve whatever the scan order). *)
let pre_collect prog ~modname (str : structure) =
  collect_field_edges prog ~modname str;
  List.iter
    (fun item ->
      match item.str_desc with
      | Tstr_value (_, vbs) ->
          List.iter
            (fun vb ->
              match vb.vb_pat.pat_desc with
              | Tpat_var (id, _) ->
                  let ty = vb.vb_expr.exp_type in
                  if (not (is_arrow ty)) && is_mutable_value_ty ty && not (is_atomic_ty ty)
                  then Hashtbl.replace prog.p_globals (modname ^ "." ^ Ident.name id) vb.vb_loc
              | _ -> ())
            vbs
      | _ -> ())
    str.str_items

(* Second pass: the call graph proper. *)
let collect prog ~modname (str : structure) =
  let root = get_node prog modname Location.none in
  let st =
    {
      modname;
      prog;
      node_stack = [ root ];
      scope = [];
      submodules = [];
      anon = 0;
      handled = Hashtbl.create 64;
      spawn_scope = None;
    }
  in
  collect_structure st str

(* Apply the cross-module escape/spawn marks recorded during collection. *)
let finalize prog =
  List.iter
    (fun (name, kind) ->
      match Hashtbl.find_opt prog.p_nodes name with
      | Some n -> ( match kind with `Spawn -> n.n_spawn <- true | `Escape -> n.n_escaping <- true)
      | None -> ())
    prog.p_pending;
  prog.p_pending <- []
