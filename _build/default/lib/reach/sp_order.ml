
type strand = { sid : int; english : Om.record; hebrew : Om.record }

type t = { e_list : Om.t; h_list : Om.t; next_id : int Atomic.t }

let id s = s.sid

let create () =
  let e_list = Om.create () in
  let h_list = Om.create () in
  let root = { sid = 0; english = Om.base e_list; hebrew = Om.base h_list } in
  ({ e_list; h_list; next_id = Atomic.make 1 }, root)

let fresh_id t = Atomic.fetch_and_add t.next_id 1

(* All OM insertions hang off records reachable only from the spawning
   worker's control flow, so no lock beyond Om's internal one is needed:
   concurrent spawns by different workers insert after disjoint records. *)
let spawn t ~sync_pre u =
  let child =
    { sid = fresh_id t;
      english = Om.insert_after t.e_list u.english;
      hebrew = Om.insert_after t.h_list u.hebrew }
  in
  (* Target layouts — English: u, child, cont; Hebrew: u, cont, child.
     Inserting cont after u in Hebrew lands it between u and the
     already-inserted child. *)
  let cont =
    { sid = fresh_id t;
      english = Om.insert_after t.e_list child.english;
      hebrew = Om.insert_after t.h_list u.hebrew }
  in
  let sync =
    match sync_pre with
    | Some s -> s
    | None ->
        (* First spawn of the block: pre-insert the sync strand at what will
           remain the end of the block in both orders — after the
           continuation in English, after the child in Hebrew. *)
        { sid = fresh_id t;
          english = Om.insert_after t.e_list cont.english;
          hebrew = Om.insert_after t.h_list child.hebrew }
  in
  (child, cont, sync)

let series t u v =
  u == v
  || (Om.precedes t.e_list u.english v.english && Om.precedes t.h_list u.hebrew v.hebrew)

let parallel t u v =
  u != v
  && Om.precedes t.e_list u.english v.english <> Om.precedes t.h_list u.hebrew v.hebrew

let left_of t u v = Om.precedes t.e_list u.english v.english

let strand_count t = Atomic.get t.next_id

let om_relabels t = (Om.relabel_count t.e_list, Om.relabel_count t.h_list)
