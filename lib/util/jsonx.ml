(* Minimal recursive-descent JSON parser — enough for the bench --json
   schema and Chrome trace exports.  No external json dependency exists in
   the build environment, and the consumers (tools/bench_gate, the obs
   schema tests) only need read access to small documents, so a ~100-line
   parser beats growing the dependency set. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

exception Parse_error of string

type cursor = { s : string; mutable pos : int }

let error c fmt = Printf.ksprintf (fun m -> raise (Parse_error (Printf.sprintf "at %d: %s" c.pos m))) fmt

let peek c = if c.pos < String.length c.s then Some c.s.[c.pos] else None

let skip_ws c =
  while
    c.pos < String.length c.s
    && match c.s.[c.pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
  do
    c.pos <- c.pos + 1
  done

let expect c ch =
  match peek c with
  | Some x when x = ch -> c.pos <- c.pos + 1
  | Some x -> error c "expected %C, got %C" ch x
  | None -> error c "expected %C, got end of input" ch

let lit c word v =
  let n = String.length word in
  if c.pos + n <= String.length c.s && String.sub c.s c.pos n = word then begin
    c.pos <- c.pos + n;
    v
  end
  else error c "invalid literal"

let parse_string c =
  expect c '"';
  let buf = Buffer.create 16 in
  let rec go () =
    if c.pos >= String.length c.s then error c "unterminated string";
    let ch = c.s.[c.pos] in
    c.pos <- c.pos + 1;
    match ch with
    | '"' -> Buffer.contents buf
    | '\\' -> begin
        if c.pos >= String.length c.s then error c "unterminated escape";
        let e = c.s.[c.pos] in
        c.pos <- c.pos + 1;
        (match e with
        | '"' -> Buffer.add_char buf '"'
        | '\\' -> Buffer.add_char buf '\\'
        | '/' -> Buffer.add_char buf '/'
        | 'n' -> Buffer.add_char buf '\n'
        | 't' -> Buffer.add_char buf '\t'
        | 'r' -> Buffer.add_char buf '\r'
        | 'b' -> Buffer.add_char buf '\b'
        | 'f' -> Buffer.add_char buf '\012'
        | 'u' ->
            if c.pos + 4 > String.length c.s then error c "short \\u escape";
            let code = int_of_string ("0x" ^ String.sub c.s c.pos 4) in
            c.pos <- c.pos + 4;
            (* BMP-only, encoded as UTF-8; enough for our ASCII payloads *)
            if code < 0x80 then Buffer.add_char buf (Char.chr code)
            else if code < 0x800 then begin
              Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
              Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
            end
            else begin
              Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
              Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
              Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
            end
        | _ -> error c "bad escape %C" e);
        go ()
      end
    | ch -> Buffer.add_char buf ch; go ()
  in
  go ()

let parse_number c =
  let start = c.pos in
  let num_char ch =
    match ch with '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true | _ -> false
  in
  while c.pos < String.length c.s && num_char c.s.[c.pos] do
    c.pos <- c.pos + 1
  done;
  if c.pos = start then error c "expected number";
  match float_of_string_opt (String.sub c.s start (c.pos - start)) with
  | Some f -> Num f
  | None -> error c "bad number %S" (String.sub c.s start (c.pos - start))

let rec parse_value c =
  skip_ws c;
  match peek c with
  | Some '{' ->
      c.pos <- c.pos + 1;
      skip_ws c;
      if peek c = Some '}' then begin c.pos <- c.pos + 1; Obj [] end
      else begin
        let rec members acc =
          skip_ws c;
          let k = parse_string c in
          skip_ws c;
          expect c ':';
          let v = parse_value c in
          skip_ws c;
          match peek c with
          | Some ',' -> c.pos <- c.pos + 1; members ((k, v) :: acc)
          | Some '}' -> c.pos <- c.pos + 1; Obj (List.rev ((k, v) :: acc))
          | _ -> error c "expected ',' or '}'"
        in
        members []
      end
  | Some '[' ->
      c.pos <- c.pos + 1;
      skip_ws c;
      if peek c = Some ']' then begin c.pos <- c.pos + 1; Arr [] end
      else begin
        let rec items acc =
          let v = parse_value c in
          skip_ws c;
          match peek c with
          | Some ',' -> c.pos <- c.pos + 1; items (v :: acc)
          | Some ']' -> c.pos <- c.pos + 1; Arr (List.rev (v :: acc))
          | _ -> error c "expected ',' or ']'"
        in
        items []
      end
  | Some '"' -> Str (parse_string c)
  | Some 't' -> lit c "true" (Bool true)
  | Some 'f' -> lit c "false" (Bool false)
  | Some 'n' -> lit c "null" Null
  | Some _ -> parse_number c
  | None -> error c "unexpected end of input"

let parse s =
  let c = { s; pos = 0 } in
  let v = parse_value c in
  skip_ws c;
  if c.pos <> String.length s then error c "trailing garbage";
  v

let member key = function Obj kvs -> List.assoc_opt key kvs | _ -> None
let to_float = function Num f -> Some f | _ -> None
let to_str = function Str s -> Some s | _ -> None
let to_list = function Arr l -> Some l | _ -> None
let to_obj = function Obj kvs -> Some kvs | _ -> None
