test/test_sharded.ml: Alcotest Detector Fj Hashtbl Interval List Membuf Pint_detector Printf Registry Rng Seq_exec Sim_exec Stint Systems Test_sim_progs Workload
