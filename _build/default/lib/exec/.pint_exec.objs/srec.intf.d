lib/exec/srec.mli: Atomic Format Interval Sp_order
