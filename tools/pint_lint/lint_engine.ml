(* Orchestration: load .cmt files, run the per-module pass (R1/R2/R4 and
   the R3 field inventory), link the whole-program call graph, run the
   domain-context inference and the R5/R6 publication / single-writer
   checks, apply the ownership manifest and the baseline, and assemble the
   report. *)

(* Internal tool failure (unreadable .cmt, …) as opposed to findings: the
   CLI maps this to exit code 2. *)
exception Tool_error of string

type report = {
  findings : Lint_types.finding list;  (** non-suppressed, sorted *)
  suppressed : int;
  modules : string list;  (** modules actually analyzed *)
  fields_checked : int;  (** mutable fields inventoried for R3 *)
  checked_rows : int;  (** manifest rows verified by R5/R6 *)
  trusted_rows : int;  (** manifest rows taken on trust ('-' or lock-owned) *)
  stale_baseline : Lint_baseline.entry list;
}

(* A .cmt holds an implementation, an interface, or a packed module; only
   implementations carry the typed tree the rules inspect. *)
let load_structure path =
  let infos =
    try Cmt_format.read_cmt path
    with e ->
      raise (Tool_error (Printf.sprintf "cannot read %s: %s" path (Printexc.to_string e)))
  in
  match infos.Cmt_format.cmt_annots with
  | Cmt_format.Implementation str ->
      (* executables compile as [Dune__exe__Foo]; analysis names use the
         plain module name, same as the (wrapped false) libraries *)
      Some (Lint_callgraph.norm_component infos.Cmt_format.cmt_modname, str)
  | _ -> None

let rec collect_cmts path acc =
  if not (Sys.file_exists path) then
    raise (Tool_error (Printf.sprintf "no such path: %s" path))
  else if Sys.is_directory path then
    Array.fold_left
      (fun acc entry -> collect_cmts (Filename.concat path entry) acc)
      acc (Sys.readdir path)
  else if Filename.check_suffix path ".cmt" then path :: acc
  else acc

let load_all paths =
  let cmts = List.sort compare (List.fold_right collect_cmts paths []) in
  List.filter_map load_structure cmts

(* Link phase: the cross-module call graph + access/attribute collection.
   Two passes so globals and field edges resolve whatever the scan order. *)
let link structures =
  let prog = Lint_callgraph.create_program () in
  List.iter (fun (modname, str) -> Lint_callgraph.pre_collect prog ~modname str) structures;
  List.iter (fun (modname, str) -> Lint_callgraph.collect prog ~modname str) structures;
  Lint_callgraph.finalize prog;
  prog

let run ~baseline ~ownership paths =
  let structures = load_all paths in
  let modules = List.map fst structures in
  let per_module = List.map (fun (modname, str) -> Lint_pass.analyze ~modname str) structures in
  let fields = List.concat_map snd per_module in
  (* R3a: every mutable field must be claimed by the manifest *)
  let r3 =
    List.filter_map
      (fun (path, loc, flavor) ->
        if Lint_ownership.covers ownership path then None
        else
          Some
            (Lint_types.make_finding ~rule:Lint_types.R3_ownership ~loc ~context:path
               ~kind:"undeclared-mutable-field"
               (Printf.sprintf
                  "%s field %s is neither Atomic.t nor declared in the ownership manifest" flavor
                  path)))
      fields
  in
  (* link + domain-context inference + R5/R6 (marks global rows as used,
     so it must run before the staleness sweep below) *)
  let prog = link structures in
  let domains = Lint_domains.analyze prog in
  let publish, checked_rows, trusted_rows =
    Lint_publish.check ~prog ~domains ~ownership ~fields
  in
  (* R3b: manifest entries must claim fields that still exist *)
  let r3_stale =
    List.map
      (fun (e : Lint_ownership.entry) ->
        let loc =
          Location.in_file (Printf.sprintf "OWNERSHIP.md (line %d)" e.Lint_ownership.o_line)
        in
        Lint_types.make_finding ~rule:Lint_types.R3_ownership ~loc ~context:e.Lint_ownership.pattern
          ~kind:"stale-manifest-entry"
          (Printf.sprintf "manifest claims %s but no such mutable field exists"
             e.Lint_ownership.pattern))
      (Lint_ownership.stale ownership)
  in
  let findings = List.concat_map fst per_module @ r3 @ publish @ r3_stale in
  let kept, suppressed =
    List.partition (fun f -> not (Lint_baseline.suppresses baseline f)) findings
  in
  {
    findings = List.sort Lint_types.compare_findings kept;
    suppressed = List.length suppressed;
    modules = List.sort compare modules;
    fields_checked = List.length fields;
    checked_rows;
    trusted_rows;
    stale_baseline = Lint_baseline.stale baseline;
  }

(* The uncovered mutable-field inventory in manifest-row form — used by
   [pint_lint --dump-fields] to draft OWNERSHIP.md entries. *)
let dump_fields ~ownership paths =
  List.concat_map
    (fun (modname, str) ->
      let _, fields = Lint_pass.analyze ~modname str in
      List.filter_map
        (fun (path, _, flavor) ->
          if Lint_ownership.covers ownership path then None
          else Some (Printf.sprintf "| %s | FIXME-owner | - | %s field |" path flavor))
        fields)
    (load_all paths)

(* Per-function domain-context classification, for [--dump-contexts]. *)
let dump_contexts paths =
  let prog = link (load_all paths) in
  let domains = Lint_domains.analyze prog in
  Hashtbl.fold
    (fun name n acc -> (name, Lint_domains.classification domains n) :: acc)
    prog.Lint_callgraph.p_nodes []
  |> List.sort compare
  |> List.map (fun (name, cls) -> Printf.sprintf "%-6s %s" cls name)

let json_report r =
  let b = Buffer.create 4096 in
  Buffer.add_string b "{\n  \"findings\": [\n";
  List.iteri
    (fun i f ->
      if i > 0 then Buffer.add_string b ",\n";
      Buffer.add_string b ("    " ^ Lint_types.to_json f))
    r.findings;
  Buffer.add_string b "\n  ],\n";
  Buffer.add_string b (Printf.sprintf "  \"suppressed\": %d,\n" r.suppressed);
  Buffer.add_string b (Printf.sprintf "  \"fields_checked\": %d,\n" r.fields_checked);
  Buffer.add_string b (Printf.sprintf "  \"checked_rows\": %d,\n" r.checked_rows);
  Buffer.add_string b (Printf.sprintf "  \"trusted_rows\": %d,\n" r.trusted_rows);
  Buffer.add_string b
    (Printf.sprintf "  \"modules\": [%s],\n"
       (String.concat ", " (List.map (fun m -> "\"" ^ Lint_types.json_escape m ^ "\"") r.modules)));
  Buffer.add_string b
    (Printf.sprintf "  \"stale_baseline\": [%s]\n"
       (String.concat ", "
          (List.map
             (fun (e : Lint_baseline.entry) ->
               Printf.sprintf "\"line %d: %s %s %s %s\"" e.Lint_baseline.e_line
                 e.Lint_baseline.e_rule e.Lint_baseline.e_file e.Lint_baseline.e_context
                 e.Lint_baseline.e_kind)
             r.stale_baseline)));
  Buffer.add_string b "}\n";
  Buffer.contents b

(* SARIF 2.1.0, the shape GitHub code scanning ingests.  The partial
   fingerprint is the baseline identity, so annotations stay put across
   line drift. *)
let sarif_report r =
  let esc = Lint_types.json_escape in
  let rule_json rule =
    Printf.sprintf
      {|{"id":"%s","name":"%s","shortDescription":{"text":"%s"}}|}
      (Lint_types.rule_id rule)
      (esc (Lint_types.rule_title rule))
      (esc (Lint_types.rule_title rule))
  in
  let result_json (f : Lint_types.finding) =
    let r1, r2, r3, r4 = Lint_types.fingerprint f in
    Printf.sprintf
      {|{"ruleId":"%s","level":"error","message":{"text":"[%s] (%s) %s"},"locations":[{"physicalLocation":{"artifactLocation":{"uri":"%s"},"region":{"startLine":%d,"startColumn":%d}}}],"partialFingerprints":{"pintLintIdentity/v1":"%s:%s:%s:%s"}}|}
      (Lint_types.rule_id f.Lint_types.rule)
      (esc f.Lint_types.kind) (esc f.Lint_types.context) (esc f.Lint_types.message)
      (esc f.Lint_types.file)
      (max 1 f.Lint_types.line)
      (f.Lint_types.col + 1)
      (esc r1) (esc r2) (esc r3) (esc r4)
  in
  Printf.sprintf
    {|{"$schema":"https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/Schemata/sarif-schema-2.1.0.json","version":"2.1.0","runs":[{"tool":{"driver":{"name":"pint_lint","informationUri":"https://example.invalid/pint_lint","rules":[%s]}},"results":[%s]}]}
|}
    (String.concat "," (List.map rule_json Lint_types.all_rules))
    (String.concat "," (List.map result_json r.findings))
