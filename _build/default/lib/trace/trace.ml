let chunk_size = 256

type chunk = { slots : Srec.t option array; mutable next : chunk option }

let new_chunk () = { slots = Array.make chunk_size None; next = None }

type t = {
  tid : int;
  towner : int;
  mutable wchunk : chunk;  (* producer's chunk *)
  mutable wpos : int;  (* producer index within wchunk *)
  mutable rchunk : chunk;  (* consumer's chunk *)
  mutable rpos : int;  (* consumer index within rchunk *)
  n_pushed : int Atomic.t;
  mutable n_popped : int;  (* consumer-private *)
  closed : bool Atomic.t;
  mutable unlock_latch : bool;  (* consumer-private *)
}

let create ~id ~owner =
  let c = new_chunk () in
  {
    tid = id;
    towner = owner;
    wchunk = c;
    wpos = 0;
    rchunk = c;
    rpos = 0;
    n_pushed = Atomic.make 0;
    n_popped = 0;
    closed = Atomic.make false;
    unlock_latch = false;
  }

let id t = t.tid
let owner t = t.towner

let push t s =
  if t.wpos = chunk_size then begin
    let c = new_chunk () in
    (* link before publishing, so a consumer that observes the bumped count
       can always follow [next] *)
    t.wchunk.next <- Some c;
    t.wchunk <- c;
    t.wpos <- 0
  end;
  t.wchunk.slots.(t.wpos) <- Some s;
  t.wpos <- t.wpos + 1;
  Atomic.incr t.n_pushed

let close t = Atomic.set t.closed true

let available t = Atomic.get t.n_pushed - t.n_popped

let advance_consumer t =
  if t.rpos = chunk_size then begin
    match t.rchunk.next with
    | Some c ->
        t.rchunk <- c;
        t.rpos <- 0
    | None -> failwith "Trace: published count runs past linked chunks"
  end

let peek t =
  if available t <= 0 then None
  else begin
    advance_consumer t;
    match t.rchunk.slots.(t.rpos) with
    | Some _ as s -> s
    | None -> failwith "Trace: published slot is empty"
  end

let pop t =
  if available t <= 0 then failwith "Trace.pop: nothing available";
  advance_consumer t;
  t.rchunk.slots.(t.rpos) <- None;
  t.rpos <- t.rpos + 1;
  t.n_popped <- t.n_popped + 1

let is_closed t = Atomic.get t.closed
let drained t = is_closed t && available t = 0
let pushed t = Atomic.get t.n_pushed
let popped t = t.n_popped

let unlocked t =
  t.unlock_latch
  ||
  if t.n_popped > 0 then begin
    (* something was already collected, so the head check passed before *)
    t.unlock_latch <- true;
    true
  end
  else
    match peek t with
    | Some first when Atomic.get first.Srec.pred = 0 ->
        t.unlock_latch <- true;
        true
    | _ -> false
