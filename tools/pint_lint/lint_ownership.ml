(* The OWNERSHIP.md manifest: the single-owner argument of DESIGN.md §8
   turned into checkable data.

   The linter enumerates every mutable (or mutable-container) field of
   every type declared under lib/; each one must either be synchronized
   ([Atomic.t] & friends — detected from the type, no entry needed) or be
   claimed here with a named owner.  Rows are standard markdown table rows:

     | Module.type.field | owner | justification |

   The first cell may end in [.*] to claim every field of a type
   ([Itreap.scratch.*]) or every field of a module ([Wl_heat.*]) — meant
   for single-stage-local state where per-field entries add no information.
   Entries (wildcard or not) that match no existing field are reported as
   R3 findings: a manifest claiming fields that are gone is wrong, not
   merely untidy. *)

type entry = {
  pattern : string;  (** [Module.type.field], or with a trailing [.*] *)
  owner : string;
  note : string;
  o_line : int;
  mutable matched : bool;
}

type t = { entries : entry list }

let empty = { entries = [] }

(* A manifest row's first cell must look like a field path, which keeps the
   parser from eating the table header or prose tables elsewhere in the
   file. *)
let looks_like_pattern s =
  s <> "" && s.[0] >= 'A' && s.[0] <= 'Z' && String.contains s '.'

let parse_row ~lineno line =
  let line = String.trim line in
  if String.length line < 2 || line.[0] <> '|' then None
  else
    let cells =
      String.split_on_char '|' line |> List.map String.trim
      |> List.filter (fun c -> c <> "")
    in
    match cells with
    | pattern :: owner :: rest when looks_like_pattern pattern ->
        (* tolerate a missing note cell but not a missing owner *)
        let sep = String.for_all (fun c -> c = '-' || c = ':' || c = ' ') owner in
        if sep || owner = "" then None
        else
          Some
            {
              pattern;
              owner;
              note = String.concat " | " rest;
              o_line = lineno;
              matched = false;
            }
    | _ -> None

let load path =
  if not (Sys.file_exists path) then empty
  else begin
    let ic = open_in path in
    let entries = ref [] in
    let lineno = ref 0 in
    (try
       while true do
         incr lineno;
         match parse_row ~lineno:!lineno (input_line ic) with
         | Some e -> entries := e :: !entries
         | None -> ()
       done
     with End_of_file -> close_in ic);
    { entries = List.rev !entries }
  end

let pattern_matches pat field =
  if pat = field then true
  else
    match Str_split.split_on_first pat ~sep:".*" with
    | Some (prefix, "") -> Str_split.starts_with ~prefix:(prefix ^ ".") field
    | _ -> false

(* [covers t field] — true when a manifest entry claims [field]
   (e.g. "Itreap.t.root"); marks the entry so staleness can be checked. *)
let covers t field =
  List.fold_left
    (fun acc e ->
      if pattern_matches e.pattern field then begin
        e.matched <- true;
        true
      end
      else acc)
    false t.entries

(* Entries that matched no discovered field.  Wildcards are held to the
   same standard: a module-level claim over a module with no mutable state
   left is as stale as a field-level one. *)
let stale t = List.filter (fun e -> not e.matched) t.entries
