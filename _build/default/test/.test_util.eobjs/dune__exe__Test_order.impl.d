test/test_order.ml: Alcotest Array Atomic Domain List Om QCheck QCheck_alcotest Rng Vec
