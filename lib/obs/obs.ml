(* An observability session: the clock, the track registry (one event ring
   per pipeline stage / core worker / serial detector) and the named
   latency histograms.  Tracks and histograms are registered while the
   pipeline is being wired (detector construction, driver installation) —
   before any stage runs — so the registry lists are effectively frozen
   during the run; each ring/histogram then has the single owner that
   requested it (OWNERSHIP.md). *)

type t = {
  clock : Clock.t;
  capacity : int;
  enabled : bool;
  mutable tracks : (string * Evring.t) list; (* registration order *)
  mutable histos : (string * Histo.t) list;
}

let default_capacity = 16384

let create ?(capacity = default_capacity) ~clock () =
  { clock; capacity; enabled = true; tracks = []; histos = [] }

let disabled = { clock = Clock.null; capacity = 0; enabled = false; tracks = []; histos = [] }

let enabled t = t.enabled
let clock t = t.clock

(* Get-or-create by name: the same name always yields the same ring, so a
   stage ring and the AHQ hook that reports on the same stage share one
   track (and one owner). *)
let track t name =
  if not t.enabled then Evring.null
  else
    match List.assoc_opt name t.tracks with
    | Some r -> r
    | None ->
        let r = Evring.create ~name ~clock:t.clock ~capacity:t.capacity in
        t.tracks <- t.tracks @ [ (name, r) ];
        r

let histo t name =
  if not t.enabled then Histo.dummy
  else
    match List.assoc_opt name t.histos with
    | Some h -> h
    | None ->
        let h = Histo.create () in
        t.histos <- t.histos @ [ (name, h) ];
        h

let tracks t = t.tracks
let track_names t = List.map fst t.tracks

let events t = List.fold_left (fun acc (_, r) -> acc + Evring.recorded r) 0 t.tracks
let dropped t = List.fold_left (fun acc (_, r) -> acc + Evring.dropped r) 0 t.tracks

(* Occupancy statistics over the retained window of every track that
   carries Ev.enqueue samples (the AHQ occupancy time series). *)
let occupancy_stats t =
  let n = ref 0 and sum = ref 0 and max_v = ref 0 in
  List.iter
    (fun (_, r) ->
      Evring.iter r (fun ~ts:_ ~dur:_ ~kind ~arg ->
          if Ev.is_counter kind then begin
            incr n;
            sum := !sum + arg;
            if arg > !max_v then max_v := arg
          end))
    t.tracks;
  (!n, !sum, !max_v)

let summary t =
  if not t.enabled then []
  else begin
    let occ_n, occ_sum, occ_max = occupancy_stats t in
    let base =
      [
        ("obs.tracks", float_of_int (List.length t.tracks));
        ("obs.events", float_of_int (events t));
        ("obs.dropped", float_of_int (dropped t));
      ]
    in
    let occ =
      if occ_n = 0 then []
      else
        [
          ("obs.ahq_occupancy.max", float_of_int occ_max);
          ("obs.ahq_occupancy.mean", float_of_int occ_sum /. float_of_int occ_n);
        ]
    in
    let hs =
      List.concat_map
        (fun (name, h) ->
          let key s = Printf.sprintf "obs.h.%s.%s" name s in
          [
            (key "n", float_of_int (Histo.count h));
            (key "p50", float_of_int (Histo.quantile h 0.5));
            (key "p90", float_of_int (Histo.quantile h 0.9));
            (key "p99", float_of_int (Histo.quantile h 0.99));
            (key "max", float_of_int (Histo.max_value h));
          ])
        t.histos
    in
    base @ occ @ hs
  end

let chrome_json ?(meta = []) t =
  let drops =
    List.filter_map
      (fun (name, r) ->
        if Evring.dropped r > 0 then Some ("dropped." ^ name, string_of_int (Evring.dropped r))
        else None)
      t.tracks
  in
  Chrome.export ~meta:(meta @ drops) ~tracks:t.tracks ()

let write_chrome ?meta t ~path =
  let oc = open_out path in
  output_string oc (chrome_json ?meta t);
  close_out oc
