type instance = { run : unit -> unit; check : unit -> bool }

type t = {
  name : string;
  description : string;
  default_size : int;
  default_base : int;
  make : size:int -> base:int -> instance;
  racy : (size:int -> base:int -> instance) option;
}
