(** The pint_serve wire protocol: length-prefix framing and message codecs.

    {2 Framing}

    Every message travels as one frame: a 4-byte little-endian payload
    length, then the payload, whose first byte is the message tag.  A
    {!Frames.t} reassembles frames from arbitrary socket-read chunks (the
    transport analogue of {!Tracefile.Decoder}).

    {2 Messages}

    Client → server: ['H'] hello (protocol version + requested shard
    count, 0 = server default, + optional predict window, 0 = off — a
    version-2 trailing field, absent from version-1 hellos), ['D'] data
    (one raw PINTRACE chunk — chunking is transport-level; the server's
    trace decoder carries state across chunk boundaries, so any split is
    legal), ['E'] end of stream.

    Server → client: ['A'] session accepted (session id), ['R'] newly
    found races (Theorem-5 keys plus one witness interval each), ['S']
    final summary (strand/race counts + diagnostic and obs key-values,
    plus — for predict sessions — a trailing block of predicted races in
    the ['R'] layout; omitted when empty, so version-1 summaries are
    byte-identical), ['X'] rejection/error (admission refusal, malformed
    stream, corrupt DAG).

    Version history: 1 — initial; 2 — predictive detection opt-in (the
    ['H'] predict field and the ['S'] predicted block).  Both trailing
    fields decode as empty when absent, so a version-2 endpoint reads
    version-1 frames unchanged. *)

exception Proto_error of string

val protocol_version : int

(** Default cap on one frame's payload (1 MiB): a peer announcing more is
    malformed, not a reason to buffer without bound. *)
val default_max_frame : int

type client_msg =
  | Hello of { version : int; shards : int; predict : int }
      (** [predict] — requested prediction window [w] for this session
          (see {!Predict}); 0 disables predictive detection *)
  | Data of string
  | End

type server_msg =
  | Accepted of { session : int }
  | Races of (Report.kind * int * int * Interval.t) list
  | Summary of {
      n_strands : int;
      n_races : int;
      stats : (string * string) list;
      predicted : (Report.kind * int * int * Interval.t) list;
          (** predicted races for predict sessions (empty otherwise) —
              disjoint from every ['R']-frame observed race *)
    }
  | Reject of string

(** [frame payload] — prepend the length prefix. *)
val frame : string -> string

(** Reassemble frames from a byte stream.  Single-owner: one per
    connection, fed only by that connection's reader. *)
module Frames : sig
  type t

  val create : ?max_frame:int -> unit -> t

  (** Append raw socket bytes. *)
  val feed : t -> ?pos:int -> ?len:int -> string -> unit

  (** Next complete payload, if one has fully arrived.
      @raise Proto_error on an over-limit announced length. *)
  val next : t -> string option
end

(** Encoders return complete frames (length prefix included); decoders
    take one payload as returned by {!Frames.next}.
    @raise Proto_error on malformed payloads. *)

val encode_client : client_msg -> string
val encode_server : server_msg -> string
val decode_client : string -> client_msg
val decode_server : string -> server_msg
