type system = Base | Stint_sys | Pint_sys | Cracer_sys

let system_name = function
  | Base -> "baseline"
  | Stint_sys -> "stint"
  | Pint_sys -> "pint"
  | Cracer_sys -> "cracer"

let detector_names = [ "none"; "stint"; "cracer"; "pint" ]

let make_detector ?seed ?(shards = 1) ?stage_cost ?(obs = Obs.disabled) ?(bp_rounds = 0) name =
  match name with
  | "none" -> Some (Nodetect.make (), [])
  | "stint" ->
      let d =
        match seed with Some s -> Stint.make ~seed:s ~obs () | None -> Stint.make ~obs ()
      in
      Some (d, [])
  | "cracer" -> Some (Cracer.make ~obs (), [])
  | "pint" ->
      let p =
        match seed with
        | Some s -> Pint_detector.make ~seed:s ~shards ()
        | None -> Pint_detector.make ~shards ()
      in
      Pint_detector.set_obs p obs;
      if bp_rounds > 0 then Pint_detector.set_backpressure p ~rounds:bp_rounds;
      let stages =
        match stage_cost with
        | Some cost -> Pint_detector.stages ~cost p
        | None -> Pint_detector.stages p
      in
      List.iter (fun s -> Stage.set_ring s (Obs.track obs (Stage.name s))) stages;
      Some (Pint_detector.detector p, stages)
  | _ -> None

(* Group a flat stage list into shard micropools for the real-domain
   executor: stages carrying the same shard index (per the detector's
   naming authority) share one pool, so each pool domain owns one lane's
   full {writer, lreader, rreader} triple; stages the parser does not
   recognize get singleton pools.  Pool order follows first appearance, so
   [make_detector]'s stage order yields pools in shard order. *)
let micropools stages =
  let tbl = Hashtbl.create 8 in
  let order = ref [] in
  List.iter
    (fun s ->
      let key =
        match Pint_detector.role_of_stage_name (Stage.name s) with
        | Some (_, k) -> `Shard k
        | None -> `Solo (Stage.name s)
      in
      match Hashtbl.find_opt tbl key with
      | Some cell -> cell := s :: !cell
      | None ->
          let cell = ref [ s ] in
          Hashtbl.add tbl key cell;
          order := key :: !order)
    stages;
  List.rev_map (fun key -> List.rev !(Hashtbl.find tbl key)) !order

type measurement = {
  system : string;
  workload : string;
  workers : int;
  time : float;
  core_time : float;
  writer_time : float;
  lreader_time : float;
  rreader_time : float;
  races : int;
  checked : bool;
  n_steals : int;
  n_strands : int;
  diags : (string * float) list;
}

let vsec cycles = cycles /. 1e6

let run ?(model = Cost_model.default) ?(seed = 2022) ?(shards = 1) ~(workload : Workload.t)
    ~size ~base ~workers system =
  let inst = workload.make ~size ~base in
  let mk_config strand_cost stages n_workers =
    {
      Sim_exec.n_workers;
      seed;
      strand_cost;
      c_steal = model.Cost_model.c_steal;
      c_steal_fail = model.Cost_model.c_steal_fail;
      stages;
      obs_clock = Clock.null;
    }
  in
  let finishup ~det ~sim_res ~time ~writer_time ~lreader_time ~rreader_time =
    let races, diags =
      match det with
      | Some d ->
          d.Detector.drain ();
          (Report.count d.Detector.report, d.Detector.diagnostics ())
      | None -> (0, [])
    in
    {
      system = system_name system;
      workload = workload.name;
      workers;
      time;
      core_time = float_of_int sim_res.Sim_exec.makespan;
      writer_time;
      lreader_time;
      rreader_time;
      races;
      checked = inst.Workload.check ();
      n_steals = sim_res.Sim_exec.n_steals;
      n_strands = sim_res.Sim_exec.n_strands;
      diags;
    }
  in
  match system with
  | Base ->
      let d, _ = Option.get (make_detector "none") in
      let config = mk_config (Cost_model.base_cost model) [] workers in
      let r = Sim_exec.run ~config ~driver:d.Detector.driver inst.Workload.run in
      finishup ~det:None ~sim_res:r
        ~time:(float_of_int r.Sim_exec.makespan)
        ~writer_time:0. ~lreader_time:0. ~rreader_time:0.
  | Cracer_sys ->
      let d, _ = Option.get (make_detector "cracer") in
      let config = mk_config (Cost_model.cracer_core_cost model) [] workers in
      let r = Sim_exec.run ~config ~driver:d.Detector.driver inst.Workload.run in
      finishup ~det:(Some d) ~sim_res:r
        ~time:(float_of_int r.Sim_exec.makespan)
        ~writer_time:0. ~lreader_time:0. ~rreader_time:0.
  | Stint_sys ->
      (* same treap seeds as the PINT run below: STINT now maintains the
         same three treap roles, and matching priorities keep the two
         systems' visit counts comparable instead of diverging on treap
         shape noise *)
      let d, _ = Option.get (make_detector ~seed:(seed + 7) "stint") in
      let config = mk_config (Cost_model.stint_core_cost model) [] 1 in
      let r = Sim_exec.run ~config ~driver:d.Detector.driver inst.Workload.run in
      d.Detector.drain ();
      let diag k = match List.assoc_opt k (d.Detector.diagnostics ()) with
        | Some v -> v
        | None -> 0.
      in
      let treap =
        Cost_model.treap_time model
          ~visits:(diag "writer_visits" +. diag "reader_visits")
          ~strands:(diag "strands") ~treaps:3
      in
      finishup ~det:(Some d) ~sim_res:r
        ~time:(float_of_int r.Sim_exec.makespan +. treap)
        ~writer_time:0. ~lreader_time:0. ~rreader_time:0.
  | Pint_sys ->
      let det, stages =
        Option.get
          (make_detector ~seed:(seed + 7) ~shards
             ~stage_cost:(Cost_model.treap_step_cost model) "pint")
      in
      let config = mk_config (Cost_model.pint_core_cost model) stages workers in
      let r = Sim_exec.run ~config ~driver:det.Detector.driver inst.Workload.run in
      (* per-role means come from the detector's own naming/role reduction,
         so the harness never pattern-matches stage-name prefixes *)
      let clocks = r.Sim_exec.stage_clocks in
      let w = Pint_detector.role_mean Pint_detector.Writer clocks
      and l = Pint_detector.role_mean Pint_detector.Lreader clocks
      and rr = Pint_detector.role_mean Pint_detector.Rreader clocks in
      let clock_values = List.map (fun (_, c) -> float_of_int c) clocks in
      let time =
        if workers = 1 then
          (* §IV-A one-core configuration: core first, then access history —
             every treap-worker clock runs back to back *)
          List.fold_left ( +. ) (float_of_int r.Sim_exec.makespan) clock_values
        else
          (* each of the 3·shards treap workers has its own core: the run
             ends when the slowest component does *)
          List.fold_left Float.max (float_of_int r.Sim_exec.makespan) clock_values
      in
      finishup ~det:(Some det) ~sim_res:r ~time ~writer_time:w ~lreader_time:l ~rreader_time:rr
