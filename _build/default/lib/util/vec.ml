type 'a t = { mutable data : 'a array; mutable len : int; dummy : 'a }

let create ?(capacity = 8) dummy =
  let capacity = max capacity 1 in
  { data = Array.make capacity dummy; len = 0; dummy }

let length v = v.len
let is_empty v = v.len = 0

let check v i fn = if i < 0 || i >= v.len then invalid_arg ("Vec." ^ fn ^ ": index out of bounds")

let get v i =
  check v i "get";
  v.data.(i)

let set v i x =
  check v i "set";
  v.data.(i) <- x

let grow v =
  let cap = Array.length v.data in
  let data = Array.make (2 * cap) v.dummy in
  Array.blit v.data 0 data 0 v.len;
  v.data <- data

let push v x =
  if v.len = Array.length v.data then grow v;
  v.data.(v.len) <- x;
  v.len <- v.len + 1

let pop v =
  if v.len = 0 then invalid_arg "Vec.pop: empty";
  v.len <- v.len - 1;
  let x = v.data.(v.len) in
  v.data.(v.len) <- v.dummy;
  x

let peek v =
  if v.len = 0 then invalid_arg "Vec.peek: empty";
  v.data.(v.len - 1)

let clear v =
  Array.fill v.data 0 v.len v.dummy;
  v.len <- 0

let iter f v =
  for i = 0 to v.len - 1 do
    f v.data.(i)
  done

let iteri f v =
  for i = 0 to v.len - 1 do
    f i v.data.(i)
  done

let fold_left f acc v =
  let acc = ref acc in
  for i = 0 to v.len - 1 do
    acc := f !acc v.data.(i)
  done;
  !acc

let to_array v = Array.sub v.data 0 v.len

let of_array ~dummy a =
  let n = Array.length a in
  let v = create ~capacity:(max n 1) dummy in
  Array.blit a 0 v.data 0 n;
  v.len <- n;
  v

let sort cmp v =
  let live = Array.sub v.data 0 v.len in
  Array.sort cmp live;
  Array.blit live 0 v.data 0 v.len

let truncate v n =
  if n < 0 || n > v.len then invalid_arg "Vec.truncate";
  Array.fill v.data n (v.len - n) v.dummy;
  v.len <- n
