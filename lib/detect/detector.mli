(** Uniform handle over a race detector instance.

    A detector is created per run, handed to an executor via [driver], and
    queried afterwards.  [drain] completes any asynchronous pipeline work
    (PINT's treap workers when the executor did not drive them itself) and
    must be called before reading [report] — it is a no-op for synchronous
    detectors. *)

type t = {
  name : string;
  driver : Hooks.driver;
  report : Report.t;
  drain : unit -> unit;
  diagnostics : unit -> (string * float) list;
      (** implementation counters (treap sizes, node visits, strand counts…)
          consumed by the benchmark harness's cost model *)
  validate : unit -> unit;
      (** check the detector's internal structural invariants (treap heap
          order, BST order, size counters…), raising [Failure] on any
          violation.  Call after [drain]; a no-op for detectors without
          checkable structure. *)
}

val races : t -> Report.race list
val race_count : t -> int

(** [diag t key] — a diagnostic counter, 0. when absent. *)
val diag : t -> string -> float
