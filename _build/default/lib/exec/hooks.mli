(** The executor ↔ detector contract.

    An executor builds a {!ctx} for the run, asks the detector driver for its
    {!t} (hook set), and then:
    - installs [sink ~wid] as the domain-local {!Access} sink whenever worker
      [wid] executes user code (the executor transparently wraps it to
      maintain each record's [raw_reads]/[raw_writes]/[work] ledgers);
    - calls [on_start]/[on_finish] at every strand boundary, with Algorithm-1
      bookkeeping ([pred]/[child]/[is_spawn]) already applied to the records;
    - calls [on_done] exactly once after the computation (and, for PINT, the
      executor's simulated/real treap workers) has fully completed. *)

type ctx = {
  aspace : Aspace.t;
  sp : Sp_order.t;
  n_workers : int;  (** number of core workers *)
  current : wid:int -> Srec.t;  (** record currently executing on a worker *)
}

type t = {
  sink : wid:int -> Access.sink;
  on_start : wid:int -> Srec.t -> Events.start_kind -> unit;
  on_finish : wid:int -> Srec.t -> Events.finish_kind -> unit;
  on_done : unit -> unit;
}

(** A detector, from the executor's point of view. *)
type driver = ctx -> t

(** Hooks that do nothing (the no-detection baseline). *)
val null_hooks : t

(** [with_counting r sink] wraps a detector sink so that every event also
    bumps the ledgers of the current record provided by [r]. *)
val with_counting : (unit -> Srec.t) -> Access.sink -> Access.sink
