test/test_detect_seq.ml: Access Alcotest Array Aspace Cracer Detector Fj Hooks Interval List Membuf Option Pint_detector Printf QCheck QCheck_alcotest Report Rng Seq_exec Sp_order Srec Stint
