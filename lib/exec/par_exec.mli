(** Real multi-domain work-stealing executor.

    Runs the fork-join computation on OCaml 5 domains with Cilk-style
    continuation stealing: a worker executes the spawned child immediately,
    parks the continuation on its own lock-free Chase-Lev deque
    ({!Cldeque}), and idle workers steal the oldest continuation from a
    random victim — no mutex anywhere on the steal path.  Non-trivial syncs
    suspend the function; the last returning child resumes it on its own
    domain.

    Pipeline stages run on shard micropools ({!Micropool}): one pinned
    domain per stage group — for PINT, one per shard's {writer, lreader,
    rreader} treap triple — cooperatively round-robined with {!Backoff}
    when the group is unproductive, so the executor uses
    [n_workers + length pools] domains total and [shards] maps one-to-one
    onto detection cores (DESIGN.md §13).

    Idle core workers back off the same way: spin ladder first, then
    parked sleeps, so oversubscribed hosts (domains > cores) keep making
    progress instead of starving the domain being waited on.

    Same cactus-stack constraint as the simulator: a [with_frame] body must
    not contain a non-trivial sync. *)

type config = {
  n_workers : int;
  seed : int;  (** victim-selection seed (schedules remain nondeterministic) *)
  pools : Stage.t list list;
      (** pipeline stage groups, one pinned micropool domain each; for the
          PINT detector use {!Pint_detector.stage_pools} (one group per
          shard), or {!Micropool.singletons} for ungrouped stage lists *)
  obs : Obs.t;
      (** observability session for the per-domain tracks ([core<w>] steal
          and park instants, [pool<k>] park instants); {!Obs.disabled} (the
          default) keeps every emit a no-op *)
}

type result = {
  elapsed_s : float;
  n_steals : int;
  n_steal_cas_failures : int;
      (** lost [Cldeque.steal_top] CASes: thief-vs-thief and
          thief-vs-owner races, summed over all deques *)
  n_strands : int;
  n_spawns : int;
  n_nontrivial_syncs : int;
  n_domains : int;  (** domains used: core workers (incl. caller) + pools *)
  n_parks : int;  (** deep-backoff park episodes, workers + pools *)
}

val default_config : config

val run : ?aspace:Aspace.t -> config:config -> driver:Hooks.driver -> (unit -> unit) -> result
