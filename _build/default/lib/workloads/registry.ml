(* The paper's benchmark suite, in its Figure-1 row order. *)
let all () =
  [
    Wl_chol.workload;
    Wl_heat.workload;
    Wl_mmul.workload;
    Wl_sort.workload;
    Wl_stra.workload_row;
    Wl_stra.workload_z;
    Wl_fft.workload;
  ]

let find name = List.find (fun w -> w.Workload.name = name) (all ())
