lib/harness/systems.ml: Cost_model Cracer Detector Float List Nodetect Pint_detector Report Sim_exec Stint Workload
