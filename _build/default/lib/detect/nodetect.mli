(** The no-detection baseline: memory accesses are ignored, heap frees are
    honoured immediately.  Used for the paper's "baseline" rows. *)

val make : unit -> Detector.t
