(* Regenerate the synthetic golden traces (currently just lucky_racy).
   Deterministic: the same sources capture a byte-identical file, which
   test_predict pins. *)

let () =
  let path = if Array.length Sys.argv > 1 then Sys.argv.(1) else "test/golden/lucky_racy.trace" in
  let t = Lucky.trace () in
  Tracefile.write t path;
  Printf.printf "wrote %s (%d strand(s), %d byte(s))\n" path (Tracefile.entry_count t)
    (String.length (Tracefile.to_bytes t))
