type sink = {
  on_read : addr:int -> len:int -> unit;
  on_write : addr:int -> len:int -> unit;
  on_free : base:int -> len:int -> unit;
  on_compute : amount:int -> unit;
}

let noop =
  {
    on_read = (fun ~addr:_ ~len:_ -> ());
    on_write = (fun ~addr:_ ~len:_ -> ());
    on_free = (fun ~base:_ ~len:_ -> ());
    on_compute = (fun ~amount:_ -> ());
  }

let key = Domain.DLS.new_key (fun () -> ref noop)

let install s = !(Domain.DLS.get key) |> ignore; Domain.DLS.get key := s
let uninstall () = Domain.DLS.get key := noop
let current () = !(Domain.DLS.get key)

let emit_read ~addr ~len = (current ()).on_read ~addr ~len
let emit_write ~addr ~len = (current ()).on_write ~addr ~len
let emit_free ~base ~len = (current ()).on_free ~base ~len
let emit_compute ~amount = (current ()).on_compute ~amount
