let at_spawn ~(u : Srec.t) ~(cont : Srec.t) ~(sync : Srec.t) ~first =
  u.is_spawn <- true;
  u.child <- Some cont;
  u.child_is_sync <- false;
  Atomic.set cont.pred 1;
  if first then Atomic.set sync.pred 0

let at_return_cont_stolen ~(u : Srec.t) ~(parent_sync : Srec.t) =
  u.child <- Some parent_sync;
  u.child_is_sync <- true;
  Atomic.incr parent_sync.pred

let at_sync_nontrivial ~(u : Srec.t) ~(sync : Srec.t) =
  u.child <- Some sync;
  u.child_is_sync <- true;
  Atomic.incr sync.pred
