(* Two-level order-maintenance list.

   Invariants (checked by [validate]):
   - groups form a doubly-linked list with strictly increasing [glabel];
   - records form one doubly-linked list spanning all groups, in order;
   - each record's [grp] pointer names the group it lies in, the records of a
     group are contiguous in the record list, and [g.first] is the first;
   - record labels are strictly increasing within a group;
   - every group holds between 1 and [group_cap] records (the base group may
     transiently hold just the base record).

   The seqlock: any operation that rewrites labels or moves records between
   groups increments [version] to an odd value first and back to even after.
   Readers snapshot (glabel, label) pairs and retry when the version was odd
   or changed. *)

type record = {
  mutable label : int;
  mutable grp : group;
  mutable next : record option;
  mutable prev : record option;
}

and group = {
  mutable glabel : int;
  mutable first : record;
  mutable size : int;
  mutable next_g : group option;
  mutable prev_g : group option;
}

type t = {
  mutable first_group : group;
  lock : Mutex.t;
  version : int Atomic.t;
  mutable n_records : int;
  mutable n_groups : int;
  mutable n_relabels : int;
}

(* Capacity of a group before it splits.  Must be well below the label range
   so an evenly-relabelled group always has gaps. *)
let group_cap = 64

(* Record labels live in [0, record_label_range); group labels likewise. *)
let record_label_range = 1 lsl 60
let group_label_range = 1 lsl 60

let create () =
  let rec base_record =
    { label = record_label_range / 2; grp = base_group; next = None; prev = None }
  and base_group =
    { glabel = group_label_range / 2; first = base_record; size = 1; next_g = None; prev_g = None }
  in
  {
    first_group = base_group;
    lock = Mutex.create ();
    version = Atomic.make 0;
    n_records = 1;
    n_groups = 1;
    n_relabels = 0;
  }

let base t = t.first_group.first

let begin_relabel t =
  t.n_relabels <- t.n_relabels + 1;
  Atomic.incr t.version

let end_relabel t = Atomic.incr t.version

(* Spread the labels of [g]'s records evenly over the label range. *)
let relabel_group g =
  let step = record_label_range / (g.size + 1) in
  let rec go r i =
    r.label <- i * step;
    if i < g.size then go (Option.get r.next) (i + 1)
  in
  go g.first 1

(* Spread all group labels evenly.  O(#groups), amortized against the
   doubling it takes to exhaust the group-label range. *)
let relabel_all_groups t =
  let step = group_label_range / (t.n_groups + 1) in
  let rec go g i =
    g.glabel <- i * step;
    match g.next_g with None -> () | Some g' -> go g' (i + 1)
  in
  go t.first_group 1

(* Insert group [g'] immediately after [g], assigning it a label strictly
   between [g] and its successor; relabels all groups when no gap remains. *)
let insert_group_after t g g' =
  let succ_label () = match g.next_g with None -> group_label_range | Some s -> s.glabel in
  if succ_label () - g.glabel < 2 then relabel_all_groups t;
  let succ_label = succ_label () in
  g'.glabel <- g.glabel + ((succ_label - g.glabel) / 2);
  g'.next_g <- g.next_g;
  g'.prev_g <- Some g;
  (match g.next_g with None -> () | Some s -> s.prev_g <- Some g');
  g.next_g <- Some g';
  t.n_groups <- t.n_groups + 1

(* Split [g] in half: the second half moves into a fresh group placed right
   after [g] in the group list.  Caller holds the lock and the seqlock is
   already odd. *)
let split_group t g =
  let keep = g.size / 2 in
  let rec nth r i = if i = 0 then r else nth (Option.get r.next) (i - 1) in
  let mid = nth g.first keep in
  (* mid is the first record of the new group *)
  let g' = { glabel = 0; first = mid; size = g.size - keep; next_g = None; prev_g = None } in
  g.size <- keep;
  insert_group_after t g g';
  (* retarget the moved records *)
  let rec retag r n =
    if n > 0 then begin
      r.grp <- g';
      match r.next with None -> () | Some r' -> retag r' (n - 1)
    end
  in
  retag mid g'.size;
  relabel_group g;
  relabel_group g'

let insert_after t r =
  Mutex.lock t.lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.lock)
    (fun () ->
      (* Split first if the group is at capacity, so the gap search below
         always has room to succeed after at most one relabel. *)
      if r.grp.size >= group_cap then begin
        begin_relabel t;
        split_group t r.grp;
        end_relabel t
      end;
      let g = r.grp in
      let succ_label =
        match r.next with
        | Some s when s.grp == g -> s.label
        | _ -> record_label_range
      in
      if succ_label - r.label < 2 then begin
        begin_relabel t;
        relabel_group g;
        end_relabel t
      end;
      let succ_label =
        match r.next with
        | Some s when s.grp == g -> s.label
        | _ -> record_label_range
      in
      assert (succ_label - r.label >= 2);
      let fresh =
        { label = r.label + ((succ_label - r.label) / 2); grp = g; next = r.next; prev = Some r }
      in
      (match r.next with None -> () | Some s -> s.prev <- Some fresh);
      r.next <- Some fresh;
      g.size <- g.size + 1;
      t.n_records <- t.n_records + 1;
      fresh)

let rec compare t a b =
  if a == b then 0
  else begin
    let v1 = Atomic.get t.version in
    if v1 land 1 = 1 then begin
      Domain.cpu_relax ();
      compare t a b
    end
    else begin
      let ga = a.grp.glabel and la = a.label in
      let gb = b.grp.glabel and lb = b.label in
      let v2 = Atomic.get t.version in
      if v1 <> v2 then compare t a b
      else if ga <> gb then Stdlib.compare ga gb
      else Stdlib.compare la lb
    end
  end

let precedes t a b = compare t a b < 0

let length t = t.n_records
let relabel_count t = t.n_relabels
let group_count t = t.n_groups

let to_list t =
  Mutex.lock t.lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.lock)
    (fun () ->
      let rec go acc = function None -> List.rev acc | Some r -> go (r :: acc) r.next in
      go [] (Some t.first_group.first))

let validate t =
  Mutex.lock t.lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.lock)
    (fun () ->
      let fail fmt = Printf.ksprintf failwith fmt in
      (* group list: labels strictly increasing, linkage consistent *)
      let rec check_groups g n_groups n_records =
        (match g.next_g with
        | Some g' ->
            if g'.glabel <= g.glabel then fail "group labels not increasing";
            (match g'.prev_g with
            | Some p when p == g -> ()
            | _ -> fail "group prev link broken")
        | None -> ());
        if g.size < 1 then fail "empty group";
        if g.size > group_cap then fail "overfull group (%d)" g.size;
        (* records of this group: contiguous, increasing labels, right grp *)
        let rec check_records r i last_label =
          if r.grp != g then fail "record grp pointer wrong";
          if i > 0 && r.label <= last_label then fail "record labels not increasing";
          (match r.prev with
          | Some p when (match p.next with Some x -> x != r | None -> true) ->
              fail "record prev/next mismatch"
          | _ -> ());
          if i = g.size - 1 then r.next
          else
            match r.next with
            | None -> fail "group size overruns record list"
            | Some r' -> check_records r' (i + 1) r.label
        in
        let after = check_records g.first 0 min_int in
        (match after, g.next_g with
        | Some r, Some g' when g'.first != r -> fail "group first not contiguous"
        | Some _, None -> fail "records after last group"
        | None, Some _ -> fail "record list ends before groups do"
        | _ -> ());
        match g.next_g with
        | None ->
            if n_groups + 1 <> t.n_groups then fail "n_groups wrong";
            if n_records + g.size <> t.n_records then fail "n_records wrong"
        | Some g' -> check_groups g' (n_groups + 1) (n_records + g.size)
      in
      check_groups t.first_group 0 0)
